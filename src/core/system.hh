/**
 * @file
 * System assembly: builds the full 16-node CC-NUMA machine from a
 * MachineParams description and runs workloads on it.
 *
 * A System is single-use: construct, (optionally) initialize shared
 * data through heap()/store(), call run() once, then read statistics.
 * The benchmark harness constructs a fresh System per configuration.
 */

#ifndef CPX_CORE_SYSTEM_HH
#define CPX_CORE_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hh"
#include "mem/backing_store.hh"
#include "mem/shared_heap.hh"
#include "net/mesh.hh"
#include "net/network.hh"
#include "node/node.hh"
#include "proto/fabric.hh"

namespace cpx
{

class System : public Fabric
{
  public:
    /**
     * @param machine_params machine description
     * @param sim_threads    host worker threads for the parallel
     *                       kernel (default 1; statistics are
     *                       bit-identical at every value)
     */
    explicit System(const MachineParams &machine_params,
                    unsigned sim_threads = 1);

    // --- Fabric ---------------------------------------------------------------
    /**
     * The event queue of the current execution context: the queue of
     * the node executing on this host thread, or the system-level
     * kernel queue outside node execution (setup, sampling,
     * teardown). Components never need to know which.
     */
    EventQueue &
    eq() override
    {
        return activeNodeQueue ? *activeNodeQueue : eventQueue;
    }
    Network &net() override { return *network; }
    const AddressMap &amap() const override { return addressMap; }
    const MachineParams &params() const override { return params_; }
    BackingStore &store() override { return backingStore; }

    SlcController &slc(NodeId n) override { return nodes[n]->slc; }
    DirectoryController &dir(NodeId n) override { return nodes[n]->dir; }
    LockManager &locks(NodeId n) override { return nodes[n]->locks; }
    ProcessorIface &proc(NodeId n) override { return nodes[n]->proc; }
    Resource &bus(NodeId n) override { return nodes[n]->bus; }

    // --- concrete accessors ------------------------------------------------
    Processor &processor(NodeId n) { return nodes[n]->proc; }
    Node &node(NodeId n) { return *nodes[n]; }
    const Node &node(NodeId n) const { return *nodes[n]; }
    SharedHeap &heap() { return sharedHeap; }

    /** The mesh model, or nullptr when the uniform network is used. */
    MeshNetwork *mesh() { return meshPtr; }

    /**
     * Register every interval metric of the machine — per-node
     * breakdown and protocol counters, per-link mesh traffic, network
     * totals — in deterministic build order (nodes ascending, then
     * mesh links, then totals). See DESIGN.md §13.
     */
    void registerMetrics(MetricRegistry &registry) const;

    /**
     * @return true iff every processor's workload body has returned.
     * The interval sampler's stop predicate: once this holds, only
     * bookkeeping events remain and sampling would record nothing.
     */
    bool allProcessorsFinished() const;

    // --- execution ---------------------------------------------------------
    /**
     * Run @p body on every processor (as the parallel section) until
     * all of them finish.
     *
     * @param body  per-processor workload function
     * @param limit safety cap on simulated time
     * @return the parallel-section execution time (max finish tick)
     */
    Tick run(const std::function<void(Processor &, unsigned)> &body,
             Tick limit = maxTick);

    /**
     * Push all cached dirty data back to memory, functionally (no
     * timing). Call after run(), before verifying results.
     */
    void flushFunctionalState();

    /**
     * @return true iff no transactions, buffered writes or held
     * locks remain anywhere (protocol drained cleanly).
     */
    bool quiescent() const;

    // --- kernel aggregates ---------------------------------------------------
    // Sums over the kernel queue and every node queue. Each per-queue
    // value is identical at every --sim-threads setting, so these
    // (and anything derived from them, e.g. formatSystemStats) are
    // too.

    /** Events executed across all queues. */
    std::uint64_t totalEventsExecuted() const;

    /** Live pending events across all queues. */
    std::size_t totalPending() const;

    /** Sum of each queue's pending high-water mark. */
    std::size_t totalPeakPending() const;

    /** schedule() heap allocations across all queues. */
    std::uint64_t totalScheduleAllocs() const;

    /** Latest simulated time reached by any queue. */
    Tick simNow() const;

    /** Worker-thread count requested at construction. */
    unsigned simThreads() const { return simThreads_; }

    /** Kernel telemetry of the last run() (zeros before run()). */
    const SlabTelemetry &kernelTelemetry() const { return telemetry; }

  private:
    MachineParams params_;
    unsigned simThreads_;
    EventQueue eventQueue;  //!< kernel queue (system-level events)
    AddressMap addressMap;
    BackingStore backingStore;
    SharedHeap sharedHeap;
    std::unique_ptr<Network> network;
    MeshNetwork *meshPtr = nullptr;
    std::vector<std::unique_ptr<EventQueue>> nodeQueues;
    std::vector<std::unique_ptr<Node>> nodes;
    SlabTelemetry telemetry;
    bool ran = false;
};

} // namespace cpx

#endif // CPX_CORE_SYSTEM_HH
