#include "core/report.hh"

#include <cstdio>

namespace cpx
{

RunResult
collectStats(System &sys, Tick exec_time)
{
    const MachineParams &p = sys.params();
    RunResult r;
    r.protocol = p.protocol.name();
    r.consistency =
        p.consistency == Consistency::ReleaseConsistency ? "RC" : "SC";
    r.execTime = exec_time;

    double n = p.numProcs;
    for (NodeId i = 0; i < p.numProcs; ++i) {
        const Processor &proc = sys.processor(i);
        const auto &t = proc.times();
        r.busy += t.busy / n;
        r.readStall += t.readStall / n;
        r.writeStall += t.writeStall / n;
        r.acquireStall += t.acquireStall / n;
        r.releaseStall += t.releaseStall / n;
        r.sharedAccesses += proc.sharedAccesses();

        const SlcController &slc = sys.node(i).slc;
        r.coldReadMisses += slc.readMisses(MissKind::Cold);
        r.cohReadMisses += slc.readMisses(MissKind::Coherence);
        r.replReadMisses += slc.readMisses(MissKind::Replacement);
        r.writeMissesTotal += slc.writeMisses(MissKind::Cold) +
                              slc.writeMisses(MissKind::Coherence) +
                              slc.writeMisses(MissKind::Replacement);
        r.prefetchesIssued += slc.prefetchEngine().issued();
        r.prefetchesUseful += slc.prefetchEngine().useful();
        r.softwarePrefetches += slc.softwarePrefetches();
        r.combinedWrites +=
            slc.writeCacheUnit().combinedWrites().value();
        r.counterInvalidations += slc.counterInvalidations();

        const DirectoryController &dir = sys.node(i).dir;
        r.ownershipRequests += dir.ownershipRequests();
        r.invalidationsSent += dir.invalidationsSent();
        r.updatesForwarded += dir.updatesForwarded();
        r.migratoryDetections += dir.migratoryDetections();
        r.dirOverflowBroadcasts += dir.overflowBroadcasts();
        r.dirPointerEvictions += dir.pointerEvictions();
    }

    // Weighted mean of per-node read-miss latencies.
    double lat_sum = 0;
    std::uint64_t lat_count = 0;
    for (NodeId i = 0; i < p.numProcs; ++i) {
        const Accumulator &acc = sys.node(i).slc.readMissLatency();
        lat_sum += acc.sum();
        lat_count += acc.count();
    }
    r.avgReadMissLatency = lat_count ? lat_sum / lat_count : 0.0;

    // Latency distributions: per-node histograms share one geometry,
    // so they merge bucket-by-bucket.
    for (NodeId i = 0; i < p.numProcs; ++i) {
        const SlcController &slc = sys.node(i).slc;
        r.readMissLatency.merge(slc.readMissLatencyHist());
        r.ownershipLatency.merge(slc.ownershipLatencyHist());
        r.prefetchFillLatency.merge(slc.prefetchFillLatencyHist());
    }

    r.eventsExecuted = sys.totalEventsExecuted();
    r.peakPendingEvents = sys.totalPeakPending();
    r.scheduleAllocs = sys.totalScheduleAllocs();
    r.slabRounds = sys.kernelTelemetry().slabRounds;
    r.crossMessages = sys.kernelTelemetry().crossMessages;
    r.lookahead = sys.kernelTelemetry().lookahead;
    r.simThreads = sys.kernelTelemetry().simThreads;

    r.netBytes = sys.net().totalBytes();
    r.netMessages = sys.net().totalMessages();
    for (unsigned k = 0; k < static_cast<unsigned>(
                                 MsgClass::NumClasses);
         ++k) {
        r.classBytes[k] = sys.net().bytesOf(static_cast<MsgClass>(k));
    }
    return r;
}

std::string
formatSystemStats(System &sys)
{
    const MachineParams &p = sys.params();
    std::string out;
    char line[192];
    auto emit = [&](const char *fmt, auto... args) {
        std::snprintf(line, sizeof(line), fmt, args...);
        out += line;
    };
    auto ull = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };

    emit("system.protocol %s\n", p.protocol.name().c_str());
    emit("system.consistency %s\n",
         p.consistency == Consistency::ReleaseConsistency ? "RC"
                                                          : "SC");
    emit("system.numProcs %u\n", p.numProcs);
    // Deliberately no simThreads line: this dump must be identical
    // at every worker count (the determinism tests compare it).
    emit("system.eventsExecuted %llu\n",
         ull(sys.totalEventsExecuted()));
    emit("system.peakPendingEvents %llu\n",
         ull(sys.totalPeakPending()));
    emit("system.scheduleAllocs %llu\n",
         ull(sys.totalScheduleAllocs()));
    emit("network.bytes %llu\n", ull(sys.net().totalBytes()));
    emit("network.messages %llu\n", ull(sys.net().totalMessages()));
    const char *class_names[] = {"request", "data", "coherence",
                                 "update", "sync"};
    for (unsigned k = 0;
         k < static_cast<unsigned>(MsgClass::NumClasses); ++k) {
        emit("network.bytes.%s %llu\n", class_names[k],
             ull(sys.net().bytesOf(static_cast<MsgClass>(k))));
    }

    for (NodeId n = 0; n < p.numProcs; ++n) {
        const Node &node = sys.node(n);
        const auto &t = node.proc.times();
        emit("proc%u.busy %llu\n", n, ull(t.busy));
        emit("proc%u.readStall %llu\n", n, ull(t.readStall));
        emit("proc%u.writeStall %llu\n", n, ull(t.writeStall));
        emit("proc%u.acquireStall %llu\n", n, ull(t.acquireStall));
        emit("proc%u.releaseStall %llu\n", n, ull(t.releaseStall));
        emit("proc%u.sharedReads %llu\n", n,
             ull(node.proc.sharedReads()));
        emit("proc%u.sharedWrites %llu\n", n,
             ull(node.proc.sharedWrites()));
        emit("proc%u.lockAcquires %llu\n", n,
             ull(node.proc.lockAcquires()));

        // The FLC and write cache expose Counter references: use the
        // generic StatGroup renderer for them.
        StatGroup flc_group("node" + std::to_string(n) + ".flc");
        flc_group.addCounter("readHits", &node.flc.readHitCount());
        flc_group.addCounter("readMisses",
                             &node.flc.readMissCount());
        flc_group.addCounter("writeHits", &node.flc.writeHitCount());
        flc_group.addCounter("writeMisses",
                             &node.flc.writeMissCount());
        flc_group.dump(out);

        const SlcController &slc = node.slc;
        emit("node%u.slc.readMissCold %llu\n", n,
             ull(slc.readMisses(MissKind::Cold)));
        emit("node%u.slc.readMissCoherence %llu\n", n,
             ull(slc.readMisses(MissKind::Coherence)));
        emit("node%u.slc.readMissReplacement %llu\n", n,
             ull(slc.readMisses(MissKind::Replacement)));
        emit("node%u.slc.readHits %llu\n", n, ull(slc.readHits()));
        emit("node%u.slc.counterInvalidations %llu\n", n,
             ull(slc.counterInvalidations()));
        emit("node%u.slc.updatesReceived %llu\n", n,
             ull(slc.updatesReceived()));
        emit("node%u.slc.avgReadMissLatency %.1f\n", n,
             slc.readMissLatency().mean());
        auto hist = [&](const char *what, const Histogram &h) {
            const Accumulator &s = h.summary();
            emit("node%u.latency.%s count=%llu mean=%.1f min=%.0f "
                 "max=%.0f p50=%.1f p90=%.1f p99=%.1f overflow=%llu\n",
                 n, what, ull(s.count()), s.mean(), s.min(), s.max(),
                 h.percentile(0.50), h.percentile(0.90),
                 h.percentile(0.99), ull(h.overflowCount()));
        };
        hist("readMiss", slc.readMissLatencyHist());
        hist("ownership", slc.ownershipLatencyHist());
        hist("prefetchFill", slc.prefetchFillLatencyHist());
        emit("node%u.prefetch.issued %llu\n", n,
             ull(slc.prefetchEngine().issued()));
        emit("node%u.prefetch.useful %llu\n", n,
             ull(slc.prefetchEngine().useful()));

        StatGroup wc_group("node" + std::to_string(n) +
                           ".writeCache");
        wc_group.addCounter("combinedWrites",
                            &slc.writeCacheUnit().combinedWrites());
        wc_group.addCounter("victimFlushes",
                            &slc.writeCacheUnit().victimFlushes());
        wc_group.dump(out);

        const DirectoryController &dir = node.dir;
        emit("node%u.dir.readRequests %llu\n", n,
             ull(dir.readRequests()));
        emit("node%u.dir.ownershipRequests %llu\n", n,
             ull(dir.ownershipRequests()));
        emit("node%u.dir.invalidationsSent %llu\n", n,
             ull(dir.invalidationsSent()));
        emit("node%u.dir.fetchesSent %llu\n", n,
             ull(dir.fetchesSent()));
        emit("node%u.dir.updatesForwarded %llu\n", n,
             ull(dir.updatesForwarded()));
        emit("node%u.dir.migratoryDetections %llu\n", n,
             ull(dir.migratoryDetections()));
        emit("node%u.dir.migratoryDemotions %llu\n", n,
             ull(dir.migratoryDemotions()));
        emit("node%u.dir.writeBacks %llu\n", n, ull(dir.writeBacks()));
        emit("node%u.dir.overflowBroadcasts %llu\n", n,
             ull(dir.overflowBroadcasts()));
        emit("node%u.dir.pointerEvictions %llu\n", n,
             ull(dir.pointerEvictions()));
        emit("node%u.locks.acquires %llu\n", n,
             ull(node.locks.acquires()));
        emit("node%u.locks.queued %llu\n", n,
             ull(node.locks.queuedAcquires()));
        emit("node%u.bus.busyTicks %llu\n", n,
             ull(node.bus.totalBusy()));
        emit("node%u.bus.waitTicks %llu\n", n,
             ull(node.bus.totalWait()));
    }
    return out;
}

void
printRelativeExecutionTimes(const std::string &title,
                            const std::vector<RunResult> &results,
                            const RunResult &baseline)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%-10s %8s | %6s %6s %6s %6s %6s | %8s\n", "protocol",
                "rel.time", "busy", "read", "write", "acq", "rel",
                "ticks");
    double base = static_cast<double>(baseline.execTime);
    for (const RunResult &r : results) {
        double scale = base > 0 ? 100.0 / base : 0.0;
        std::printf(
            "%-10s %8.1f | %6.1f %6.1f %6.1f %6.1f %6.1f | %8llu\n",
            r.protocol.c_str(), r.execTime * scale, r.busy * scale,
            r.readStall * scale, r.writeStall * scale,
            r.acquireStall * scale, r.releaseStall * scale,
            static_cast<unsigned long long>(r.execTime));
    }
}

void
printRelativeTraffic(const std::string &title,
                     const std::vector<RunResult> &results,
                     const RunResult &baseline)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%-10s %12s %10s\n", "protocol", "bytes", "rel.traffic");
    double base = static_cast<double>(baseline.netBytes);
    for (const RunResult &r : results) {
        std::printf("%-10s %12llu %9.1f%%\n", r.protocol.c_str(),
                    static_cast<unsigned long long>(r.netBytes),
                    base > 0 ? 100.0 * r.netBytes / base : 0.0);
    }
}

} // namespace cpx
