/**
 * @file
 * Functional memory for the simulated shared address space.
 *
 * The simulator is program-driven: workload code computes on real
 * values. The backing store holds those values; the timing model
 * (caches, directory, network) decides *when* accesses complete.
 * Storage is sparse, allocated in pages on first touch.
 */

#ifndef CPX_MEM_BACKING_STORE_HH
#define CPX_MEM_BACKING_STORE_HH

#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cpx
{

class BackingStore
{
  public:
    explicit BackingStore(unsigned page_bytes = 4096)
        : pageBytes(page_bytes)
    {}

    std::uint32_t
    read32(Addr a) const
    {
        std::uint32_t v = 0;
        readBytes(a, &v, sizeof(v));
        return v;
    }

    void
    write32(Addr a, std::uint32_t v)
    {
        writeBytes(a, &v, sizeof(v));
    }

    std::uint64_t
    read64(Addr a) const
    {
        std::uint64_t v = 0;
        readBytes(a, &v, sizeof(v));
        return v;
    }

    void
    write64(Addr a, std::uint64_t v)
    {
        writeBytes(a, &v, sizeof(v));
    }

    double
    readDouble(Addr a) const
    {
        std::uint64_t bits = read64(a);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    writeDouble(Addr a, double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        write64(a, bits);
    }

    void
    readBytes(Addr a, void *dst, std::size_t n) const
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = byteAt(a + i);
    }

    void
    writeBytes(Addr a, const void *src, std::size_t n)
    {
        const auto *in = static_cast<const std::uint8_t *>(src);
        for (std::size_t i = 0; i < n; ++i)
            byteAt(a + i) = in[i];
    }

    /** Number of pages materialized so far. */
    std::size_t pagesAllocated() const { return pages.size(); }

  private:
    std::uint8_t &
    byteAt(Addr a)
    {
        Addr page = a / pageBytes;
        auto &storage = pages[page];
        if (!storage)
            storage = std::make_unique<std::uint8_t[]>(pageBytes);
        return storage[a % pageBytes];
    }

    std::uint8_t
    byteAt(Addr a) const
    {
        Addr page = a / pageBytes;
        auto it = pages.find(page);
        if (it == pages.end())
            return 0;
        return it->second[a % pageBytes];
    }

    unsigned pageBytes;
    mutable std::unordered_map<Addr, std::unique_ptr<std::uint8_t[]>>
        pages;
};

} // namespace cpx

#endif // CPX_MEM_BACKING_STORE_HH
