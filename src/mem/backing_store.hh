/**
 * @file
 * Functional memory for the simulated shared address space.
 *
 * The simulator is program-driven: workload code computes on real
 * values. The backing store holds those values; the timing model
 * (caches, directory, network) decides *when* accesses complete.
 * Storage is sparse, allocated in pages on first touch.
 *
 * Parallel kernel (DESIGN.md §15): during slab execution every node
 * runs with a private write overlay. Reads see the committed state as
 * of the slab start plus the node's own writes (read-your-own-writes;
 * the committed image is frozen while workers run, so a shadow page —
 * a copy of the committed page with the node's writes applied — is a
 * complete, consistent view). At the slab barrier the coordinator
 * commits every overlay's dirty bytes in ascending node order.
 *
 * This makes functional memory bit-identical at every --sim-threads
 * value by construction: causally ordered cross-node accesses (i.e.
 * separated by a protocol message, which the slab protocol delivers
 * in a strictly later slab) see exactly the values they always did,
 * while causally *unordered* same-slab accesses — races the old
 * global-queue kernel resolved by host-side event interleaving — now
 * resolve to a fixed rule (readers see the slab-start image; on a
 * same-slab write collision the highest node id wins) that does not
 * depend on worker scheduling.
 *
 * The page map itself is guarded by a shared mutex: readers take it
 * shared, a writer takes it exclusive only to materialize a missing
 * page (overlay commits and non-engine callers); page storage
 * pointers are stable after creation.
 */

#ifndef CPX_MEM_BACKING_STORE_HH
#define CPX_MEM_BACKING_STORE_HH

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cpx
{

class BackingStore
{
  public:
    explicit BackingStore(unsigned page_bytes = 4096)
        : pageBytes(page_bytes)
    {}

    std::uint32_t
    read32(Addr a) const
    {
        std::uint32_t v = 0;
        readBytes(a, &v, sizeof(v));
        return v;
    }

    void
    write32(Addr a, std::uint32_t v)
    {
        writeBytes(a, &v, sizeof(v));
    }

    std::uint64_t
    read64(Addr a) const
    {
        std::uint64_t v = 0;
        readBytes(a, &v, sizeof(v));
        return v;
    }

    void
    write64(Addr a, std::uint64_t v)
    {
        writeBytes(a, &v, sizeof(v));
    }

    double
    readDouble(Addr a) const
    {
        std::uint64_t bits = read64(a);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    writeDouble(Addr a, double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        write64(a, bits);
    }

    void
    readBytes(Addr a, void *dst, std::size_t n) const
    {
        auto *out = static_cast<std::uint8_t *>(dst);
        while (n > 0) {
            Addr page = a / pageBytes;
            std::size_t off = a % pageBytes;
            std::size_t span = std::min<std::size_t>(n, pageBytes - off);
            const std::uint8_t *storage = nullptr;
            if (tlsOverlay) {
                auto it = tlsOverlay->shadows.find(page);
                if (it != tlsOverlay->shadows.end())
                    storage = it->second.bytes.get();
            }
            if (!storage)
                storage = findPage(page);
            if (storage)
                std::memcpy(out, storage + off, span);
            else
                std::memset(out, 0, span);
            out += span;
            a += span;
            n -= span;
        }
    }

    void
    writeBytes(Addr a, const void *src, std::size_t n)
    {
        const auto *in = static_cast<const std::uint8_t *>(src);
        while (n > 0) {
            Addr page = a / pageBytes;
            std::size_t off = a % pageBytes;
            std::size_t span = std::min<std::size_t>(n, pageBytes - off);
            if (tlsOverlay) {
                ShadowPage &sp = shadowFor(page);
                std::memcpy(sp.bytes.get() + off, in, span);
                for (std::size_t b = off; b < off + span; ++b)
                    sp.dirty[b >> 6] |= std::uint64_t(1) << (b & 63);
            } else {
                std::memcpy(ensurePage(page) + off, in, span);
            }
            in += span;
            a += span;
            n -= span;
        }
    }

    // --- slab overlays (parallel kernel) -----------------------------------

    /** Create one write overlay per node; must precede enterNode(). */
    void
    beginSlabOverlays(unsigned num_nodes)
    {
        overlays.clear();
        overlays.resize(num_nodes);
    }

    /** Commit any straggler writes and drop the overlays. */
    void
    endSlabOverlays()
    {
        commitSlab();
        overlays.clear();
    }

    /**
     * Route this host thread's accesses through node @p n's overlay.
     * Called by the engine around each node's partition advance; the
     * overlay is touched only by that worker until the barrier.
     */
    void
    enterNode(unsigned n)
    {
        tlsOverlay = &overlays[n];
    }

    void
    leaveNode()
    {
        tlsOverlay = nullptr;
    }

    /**
     * Apply every overlay's dirty bytes to the committed image, in
     * ascending node order (the canonical same-slab collision rule),
     * and clear the overlays for the next slab. Coordinator-only,
     * with all workers parked at the barrier.
     */
    void
    commitSlab()
    {
        for (NodeOverlay &ov : overlays) {
            for (auto &[page, sp] : ov.shadows) {
                std::uint8_t *dst = ensurePage(page);
                for (std::size_t w = 0; w < sp.dirty.size(); ++w) {
                    std::uint64_t bits = sp.dirty[w];
                    while (bits) {
                        unsigned b =
                            static_cast<unsigned>(std::countr_zero(bits));
                        bits &= bits - 1;
                        std::size_t off = (w << 6) | b;
                        dst[off] = sp.bytes[off];
                    }
                }
            }
            ov.shadows.clear();
        }
    }

    /** Number of pages materialized so far. */
    std::size_t
    pagesAllocated() const
    {
        std::shared_lock lock(mapLock);
        return pages.size();
    }

  private:
    /** Copy-on-first-write image of one page plus a dirty-byte map. */
    struct ShadowPage
    {
        std::unique_ptr<std::uint8_t[]> bytes;
        std::vector<std::uint64_t> dirty;
    };

    /** One node's slab-private write overlay (padded: no worker ever
     *  shares a cache line of another node's overlay header). */
    struct alignas(64) NodeOverlay
    {
        std::unordered_map<Addr, ShadowPage> shadows;
    };

    ShadowPage &
    shadowFor(Addr page)
    {
        ShadowPage &sp = tlsOverlay->shadows[page];
        if (!sp.bytes) {
            sp.bytes = std::make_unique<std::uint8_t[]>(pageBytes);
            // The committed image cannot change mid-slab, so this
            // snapshot stays a faithful read view for the node.
            if (const std::uint8_t *src = findPage(page))
                std::memcpy(sp.bytes.get(), src, pageBytes);
            else
                std::memset(sp.bytes.get(), 0, pageBytes);
            sp.dirty.assign((pageBytes + 63) / 64, 0);
        }
        return sp;
    }

    const std::uint8_t *
    findPage(Addr page) const
    {
        std::shared_lock lock(mapLock);
        auto it = pages.find(page);
        return it == pages.end() ? nullptr : it->second.get();
    }

    std::uint8_t *
    ensurePage(Addr page)
    {
        {
            std::shared_lock lock(mapLock);
            auto it = pages.find(page);
            if (it != pages.end())
                return it->second.get();
        }
        std::unique_lock lock(mapLock);
        auto &storage = pages[page];
        if (!storage)
            storage = std::make_unique<std::uint8_t[]>(pageBytes);
        return storage.get();
    }

    unsigned pageBytes;
    //! Guards the map structure only; committed page contents change
    //! only while workers are parked (overlay commits) or outside
    //! engine runs entirely (setup, verification).
    mutable std::shared_mutex mapLock;
    mutable std::unordered_map<Addr, std::unique_ptr<std::uint8_t[]>>
        pages;

    std::vector<NodeOverlay> overlays;
    //! Overlay of the node currently executing on this host thread
    //! (nullptr: read/write the committed image directly).
    static inline thread_local NodeOverlay *tlsOverlay = nullptr;
};

} // namespace cpx

#endif // CPX_MEM_BACKING_STORE_HH
