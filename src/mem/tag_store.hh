/**
 * @file
 * Direct-mapped tag stores, finite or infinite.
 *
 * The paper's default configuration uses an *infinite* second-level
 * cache (so replacement misses vanish and cold/coherence components
 * can be isolated); §5.4 re-runs with a finite 16 KB SLC. TagStore
 * supports both through one interface: construct with numSets == 0
 * for the infinite variant.
 *
 * The Line type is supplied by the client (the SLC controller keeps
 * protocol state in it); it must provide a default constructor and a
 * `bool valid` member.
 */

#ifndef CPX_MEM_TAG_STORE_HH
#define CPX_MEM_TAG_STORE_HH

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "mem/block.hh"
#include "sim/types.hh"

namespace cpx
{

template <typename Line>
class TagStore
{
  public:
    /**
     * @param block_bytes block size
     * @param num_sets    number of direct-mapped sets, or 0 for an
     *                    infinite cache
     */
    TagStore(unsigned block_bytes, std::size_t num_sets)
        : blockBytes(block_bytes), numSets(num_sets)
    {
        if (numSets)
            sets.resize(numSets);
    }

    bool infinite() const { return numSets == 0; }

    /** Block-aligned address of @p a. */
    Addr align(Addr a) const { return a & ~Addr(blockBytes - 1); }

    /** Find the valid line caching @p a, or nullptr. */
    Line *
    find(Addr a)
    {
        Addr blk = align(a);
        if (infinite()) {
            auto it = map.find(blk);
            return it == map.end() ? nullptr : &it->second;
        }
        Entry &e = sets[setIndex(blk)];
        return (e.line.valid && e.tag == blk) ? &e.line : nullptr;
    }

    const Line *
    find(Addr a) const
    {
        return const_cast<TagStore *>(this)->find(a);
    }

    /**
     * The valid line that @p a would evict on fill, or nullptr if the
     * target frame is free (always free in an infinite cache). The
     * returned pair carries the victim's block address.
     */
    std::pair<Addr, Line *>
    victimFor(Addr a)
    {
        if (infinite())
            return {0, nullptr};
        Addr blk = align(a);
        Entry &e = sets[setIndex(blk)];
        if (e.line.valid && e.tag != blk)
            return {e.tag, &e.line};
        return {0, nullptr};
    }

    /**
     * Install a fresh line for @p a and return it. Any previous
     * occupant of the frame is overwritten.
     * @post find(a) == the returned line
     */
    Line *
    insert(Addr a)
    {
        Addr blk = align(a);
        if (infinite()) {
            Line &l = map[blk];
            l = Line{};
            l.valid = true;
            return &l;
        }
        Entry &e = sets[setIndex(blk)];
        e.tag = blk;
        e.line = Line{};
        e.line.valid = true;
        return &e.line;
    }

    /** Remove the line caching @p a, if any. */
    void
    erase(Addr a)
    {
        Addr blk = align(a);
        if (infinite()) {
            map.erase(blk);
            return;
        }
        Entry &e = sets[setIndex(blk)];
        if (e.line.valid && e.tag == blk)
            e.line.valid = false;
    }

    /** Number of valid lines currently held. */
    std::size_t
    size() const
    {
        if (infinite())
            return map.size();
        std::size_t n = 0;
        for (const Entry &e : sets)
            if (e.line.valid)
                ++n;
        return n;
    }

    /** Visit every valid line as f(blockAddr, Line&). */
    template <typename F>
    void
    forEach(F &&f)
    {
        if (infinite()) {
            for (auto &[blk, line] : map)
                f(blk, line);
            return;
        }
        for (Entry &e : sets)
            if (e.line.valid)
                f(e.tag, e.line);
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        Line line{};
    };

    std::size_t
    setIndex(Addr blk) const
    {
        return static_cast<std::size_t>((blk / blockBytes) % numSets);
    }

    unsigned blockBytes;
    std::size_t numSets;
    std::vector<Entry> sets;               //!< finite mode
    std::unordered_map<Addr, Line> map;    //!< infinite mode
};

} // namespace cpx

#endif // CPX_MEM_TAG_STORE_HH
