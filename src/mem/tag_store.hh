/**
 * @file
 * Direct-mapped tag stores, finite or infinite.
 *
 * The paper's default configuration uses an *infinite* second-level
 * cache (so replacement misses vanish and cold/coherence components
 * can be isolated); §5.4 re-runs with a finite 16 KB SLC. TagStore
 * supports both through one interface: construct with numSets == 0
 * for the infinite variant.
 *
 * Both variants probe contiguous arrays. The finite store is the
 * direct-mapped array the hardware would have; the infinite store is
 * an open-addressing hash table (linear probing over a flat key array
 * parallel to a flat line array), chosen over a node-based map
 * because the tag lookup sits on the simulator's hot path — every
 * simulated SLC access probes it, and chasing per-node heap cells
 * dominated the lookup cost. Deletion uses tombstones, so a Line
 * pointer is invalidated only by insert() (table growth), never by
 * erase() of another block; callers hold lookup results only until
 * the next insert().
 *
 * The Line type is supplied by the client (the SLC controller keeps
 * protocol state in it); it must provide a default constructor and a
 * `bool valid` member.
 */

#ifndef CPX_MEM_TAG_STORE_HH
#define CPX_MEM_TAG_STORE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "mem/block.hh"
#include "sim/types.hh"

namespace cpx
{

template <typename Line>
class TagStore
{
  public:
    /**
     * @param block_bytes block size
     * @param num_sets    number of direct-mapped sets, or 0 for an
     *                    infinite cache
     */
    TagStore(unsigned block_bytes, std::size_t num_sets)
        : blockBytes(block_bytes), numSets(num_sets)
    {
        if (numSets) {
            sets.resize(numSets);
        } else {
            tabKeys.assign(initialCapacity, emptyKey);
            tabLines.resize(initialCapacity);
            tabShift = 64 - initialCapacityLog2;
        }
    }

    bool infinite() const { return numSets == 0; }

    /** Block-aligned address of @p a. */
    Addr align(Addr a) const { return a & ~Addr(blockBytes - 1); }

    /** Find the valid line caching @p a, or nullptr. */
    Line *
    find(Addr a)
    {
        Addr blk = align(a);
        if (infinite()) {
            std::size_t i = findSlot(blk);
            return i == npos ? nullptr : &tabLines[i];
        }
        Entry &e = sets[setIndex(blk)];
        return (e.line.valid && e.tag == blk) ? &e.line : nullptr;
    }

    const Line *
    find(Addr a) const
    {
        return const_cast<TagStore *>(this)->find(a);
    }

    /**
     * The valid line that @p a would evict on fill, or nullptr if the
     * target frame is free (always free in an infinite cache). The
     * returned pair carries the victim's block address.
     */
    std::pair<Addr, Line *>
    victimFor(Addr a)
    {
        if (infinite())
            return {0, nullptr};
        Addr blk = align(a);
        Entry &e = sets[setIndex(blk)];
        if (e.line.valid && e.tag != blk)
            return {e.tag, &e.line};
        return {0, nullptr};
    }

    /**
     * Install a fresh line for @p a and return it. Any previous
     * occupant of the frame is overwritten.
     * @post find(a) == the returned line
     */
    Line *
    insert(Addr a)
    {
        Addr blk = align(a);
        if (infinite())
            return tableInsert(blk);
        Entry &e = sets[setIndex(blk)];
        e.tag = blk;
        e.line = Line{};
        e.line.valid = true;
        return &e.line;
    }

    /** Remove the line caching @p a, if any. */
    void
    erase(Addr a)
    {
        Addr blk = align(a);
        if (infinite()) {
            std::size_t i = findSlot(blk);
            if (i != npos) {
                tabKeys[i] = deadKey;
                tabLines[i] = Line{};   // release the line's payload now
                --liveCount;
            }
            return;
        }
        Entry &e = sets[setIndex(blk)];
        if (e.line.valid && e.tag == blk)
            e.line.valid = false;
    }

    /** Number of valid lines currently held. */
    std::size_t
    size() const
    {
        if (infinite())
            return liveCount;
        std::size_t n = 0;
        for (const Entry &e : sets)
            if (e.line.valid)
                ++n;
        return n;
    }

    /** Visit every valid line as f(blockAddr, Line&). */
    template <typename F>
    void
    forEach(F &&f)
    {
        if (infinite()) {
            for (std::size_t i = 0; i < tabKeys.size(); ++i)
                if (tabKeys[i] & occupiedBit)
                    f(tabKeys[i] ^ occupiedBit, tabLines[i]);
            return;
        }
        for (Entry &e : sets)
            if (e.line.valid)
                f(e.tag, e.line);
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        Line line{};
    };

    std::size_t
    setIndex(Addr blk) const
    {
        return static_cast<std::size_t>((blk / blockBytes) % numSets);
    }

    // ----- infinite mode: open-addressing table ------------------------
    //
    // Keys are block addresses (aligned to blockBytes >= 4, so the low
    // two bits are free) tagged with the occupied bit; 0 marks a
    // never-used slot, 2 a tombstone. Fibonacci hashing takes the top
    // bits of the multiplicative mix, which a power-of-two capacity
    // turns into the probe start.

    static constexpr Addr emptyKey = 0;
    static constexpr Addr deadKey = 2;
    static constexpr Addr occupiedBit = 1;
    static constexpr std::size_t npos = ~std::size_t{0};
    static constexpr std::size_t initialCapacityLog2 = 8;
    static constexpr std::size_t initialCapacity =
        std::size_t{1} << initialCapacityLog2;

    std::size_t
    probeStart(Addr blk) const
    {
        return static_cast<std::size_t>(
            (blk * Addr(0x9E3779B97F4A7C15ull)) >> tabShift);
    }

    std::size_t
    tabMask() const
    {
        return tabKeys.size() - 1;
    }

    /** Slot holding @p blk, or npos. */
    std::size_t
    findSlot(Addr blk) const
    {
        const std::size_t mask = tabMask();
        std::size_t i = probeStart(blk);
        for (;;) {
            Addr k = tabKeys[i];
            if (k == (blk | occupiedBit))
                return i;
            if (k == emptyKey)
                return npos;
            i = (i + 1) & mask;
        }
    }

    Line *
    tableInsert(Addr blk)
    {
        // Grow on used (live + tombstone) load so probe chains stay
        // short even after heavy erase traffic.
        if ((usedCount + 1) * 4 > tabKeys.size() * 3)
            grow();
        const std::size_t mask = tabMask();
        std::size_t i = probeStart(blk);
        std::size_t slot = npos;        // first tombstone on the chain
        for (;;) {
            Addr k = tabKeys[i];
            if (k == (blk | occupiedBit)) {
                tabLines[i] = Line{};
                tabLines[i].valid = true;
                return &tabLines[i];
            }
            if (k == deadKey && slot == npos)
                slot = i;
            if (k == emptyKey) {
                if (slot == npos) {
                    slot = i;
                    ++usedCount;        // consumed a fresh slot
                }
                tabKeys[slot] = blk | occupiedBit;
                tabLines[slot] = Line{};
                tabLines[slot].valid = true;
                ++liveCount;
                return &tabLines[slot];
            }
            i = (i + 1) & mask;
        }
    }

    void
    grow()
    {
        std::vector<Addr> oldKeys = std::move(tabKeys);
        std::vector<Line> oldLines = std::move(tabLines);
        const std::size_t newCap = oldKeys.size() * 2;
        tabKeys.assign(newCap, emptyKey);
        tabLines.clear();
        tabLines.resize(newCap);
        --tabShift;
        usedCount = liveCount;          // tombstones die in the rehash
        const std::size_t mask = tabMask();
        for (std::size_t i = 0; i < oldKeys.size(); ++i) {
            Addr k = oldKeys[i];
            if (!(k & occupiedBit))
                continue;
            std::size_t j = probeStart(k ^ occupiedBit);
            while (tabKeys[j] != emptyKey)
                j = (j + 1) & mask;
            tabKeys[j] = k;
            tabLines[j] = std::move(oldLines[i]);
        }
    }

    unsigned blockBytes;
    std::size_t numSets;
    std::vector<Entry> sets;            //!< finite mode
    std::vector<Addr> tabKeys;          //!< infinite mode: tagged keys
    std::vector<Line> tabLines;         //!< infinite mode: slot payloads
    std::size_t liveCount = 0;          //!< occupied slots
    std::size_t usedCount = 0;          //!< occupied + tombstone slots
    unsigned tabShift = 0;              //!< 64 - log2(capacity)
};

} // namespace cpx

#endif // CPX_MEM_TAG_STORE_HH
