/**
 * @file
 * Cache-block address arithmetic.
 *
 * The whole system uses one global block size (32 bytes in the
 * paper's configuration) carried in the system parameters; these
 * helpers keep the mask math in one place.
 */

#ifndef CPX_MEM_BLOCK_HH
#define CPX_MEM_BLOCK_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cpx
{

/** Address ↔ block/page arithmetic for one (block, page) geometry. */
class AddressMap
{
  public:
    AddressMap(unsigned block_bytes, unsigned page_bytes,
               unsigned num_nodes)
        : blockBytes_(block_bytes), pageBytes_(page_bytes),
          numNodes_(num_nodes)
    {
        if ((block_bytes & (block_bytes - 1)) != 0 || block_bytes == 0)
            fatal("block size must be a power of two");
        if ((page_bytes & (page_bytes - 1)) != 0 ||
            page_bytes < block_bytes) {
            fatal("page size must be a power of two >= block size");
        }
        if (num_nodes == 0)
            fatal("need at least one node");
    }

    unsigned blockBytes() const { return blockBytes_; }
    unsigned pageBytes() const { return pageBytes_; }
    unsigned wordsPerBlock() const { return blockBytes_ / wordBytes; }

    /** First byte of the block containing @p a. */
    Addr blockAddr(Addr a) const { return a & ~Addr(blockBytes_ - 1); }

    /** Byte offset of @p a within its block. */
    unsigned blockOffset(Addr a) const {
        return static_cast<unsigned>(a & (blockBytes_ - 1));
    }

    /** Word index of @p a within its block. */
    unsigned wordInBlock(Addr a) const {
        return blockOffset(a) / wordBytes;
    }

    /** Virtual page number of @p a. */
    Addr pageNum(Addr a) const { return a / pageBytes_; }

    /**
     * Home node of the page containing @p a: round-robin on the
     * virtual page number, as in the paper (§4).
     */
    NodeId home(Addr a) const {
        return static_cast<NodeId>(pageNum(a) % numNodes_);
    }

    /** True iff @p a and @p b fall in the same block. */
    bool sameBlock(Addr a, Addr b) const {
        return blockAddr(a) == blockAddr(b);
    }

  private:
    unsigned blockBytes_;
    unsigned pageBytes_;
    unsigned numNodes_;
};

} // namespace cpx

#endif // CPX_MEM_BLOCK_HH
