#include "mem/write_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cpx
{

WriteCache::WriteCache(const AddressMap &amap, unsigned num_blocks)
    : map(amap), numBlocks(num_blocks), frames(num_blocks)
{
    if (num_blocks == 0)
        fatal("write cache needs at least one block");
    for (Frame &f : frames)
        f.words.resize(map.wordsPerBlock(), 0);
}

WriteCache::Frame *
WriteCache::findFrame(Addr block_addr)
{
    for (Frame &f : frames)
        if (f.valid && f.blockAddr == block_addr)
            return &f;
    return nullptr;
}

const WriteCache::Frame *
WriteCache::findFrame(Addr block_addr) const
{
    return const_cast<WriteCache *>(this)->findFrame(block_addr);
}

bool
WriteCache::writeWord(Addr addr, std::uint32_t value,
                      WriteCacheFlush &evicted)
{
    Addr blk = map.blockAddr(addr);
    unsigned word = map.wordInBlock(addr);
    std::uint32_t bit = 1u << word;

    if (Frame *f = findFrame(blk)) {
        // This write combines with earlier writes to the same block:
        // it will ride in the same flush message. Combining does not
        // refresh the frame's FIFO position.
        ++combined;
        f->dirtyMask |= bit;
        f->words[word] = value;
        return false;
    }

    // Allocate: a free frame if any, else the oldest resident block
    // (FIFO — the buffer is fully associative, §3.3 / [4]).
    Frame *target = nullptr;
    for (Frame &f : frames) {
        if (!f.valid) {
            target = &f;
            break;
        }
        if (!target || f.seq < target->seq)
            target = &f;
    }

    bool evict = target->valid;
    if (evict) {
        evicted = WriteCacheFlush{target->blockAddr, target->dirtyMask,
                                  target->words};
        ++victims;
        ++flushed;
    }
    ++inserts;
    target->valid = true;
    target->blockAddr = blk;
    target->dirtyMask = bit;
    target->seq = nextSeq++;
    target->words[word] = value;
    return evict;
}

bool
WriteCache::contains(Addr addr) const
{
    return findFrame(map.blockAddr(addr)) != nullptr;
}

bool
WriteCache::readWord(Addr addr, std::uint32_t &value) const
{
    const Frame *f = findFrame(map.blockAddr(addr));
    if (!f)
        return false;
    unsigned word = map.wordInBlock(addr);
    if (!(f->dirtyMask & (1u << word)))
        return false;
    value = f->words[word];
    return true;
}

std::vector<WriteCacheFlush>
WriteCache::flushAll()
{
    // Oldest first: insertion (FIFO) order, deterministic.
    std::vector<Frame *> resident;
    for (Frame &f : frames)
        if (f.valid)
            resident.push_back(&f);
    std::sort(resident.begin(), resident.end(),
              [](const Frame *a, const Frame *b) {
        return a->seq < b->seq;
    });

    std::vector<WriteCacheFlush> out;
    out.reserve(resident.size());
    for (Frame *f : resident) {
        out.push_back(
            WriteCacheFlush{f->blockAddr, f->dirtyMask, f->words});
        f->valid = false;
        f->dirtyMask = 0;
        ++flushed;
    }
    return out;
}

void
WriteCache::drop(Addr addr)
{
    if (Frame *f = findFrame(map.blockAddr(addr))) {
        f->valid = false;
        f->dirtyMask = 0;
    }
}

unsigned
WriteCache::occupancy() const
{
    unsigned n = 0;
    for (const Frame &f : frames)
        if (f.valid)
            ++n;
    return n;
}

} // namespace cpx
