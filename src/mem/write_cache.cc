#include "mem/write_cache.hh"

#include "sim/logging.hh"

namespace cpx
{

WriteCache::WriteCache(const AddressMap &amap, unsigned num_blocks)
    : map(amap), numBlocks(num_blocks), frames(num_blocks)
{
    if (num_blocks == 0)
        fatal("write cache needs at least one block");
    for (Frame &f : frames)
        f.words.resize(map.wordsPerBlock(), 0);
}

unsigned
WriteCache::frameFor(Addr block_addr) const
{
    return static_cast<unsigned>(
        (block_addr / map.blockBytes()) % numBlocks);
}

bool
WriteCache::writeWord(Addr addr, std::uint32_t value,
                      WriteCacheFlush &evicted)
{
    Addr blk = map.blockAddr(addr);
    Frame &f = frames[frameFor(blk)];
    unsigned word = map.wordInBlock(addr);
    std::uint32_t bit = 1u << word;

    if (f.valid && f.blockAddr == blk) {
        // This write combines with earlier writes to the same block:
        // it will ride in the same flush message.
        ++combined;
        f.dirtyMask |= bit;
        f.words[word] = value;
        return false;
    }

    bool evict = f.valid;
    if (evict) {
        evicted = WriteCacheFlush{f.blockAddr, f.dirtyMask, f.words};
        ++victims;
    }
    f.valid = true;
    f.blockAddr = blk;
    f.dirtyMask = bit;
    f.words[word] = value;
    return evict;
}

bool
WriteCache::contains(Addr addr) const
{
    Addr blk = map.blockAddr(addr);
    const Frame &f = frames[frameFor(blk)];
    return f.valid && f.blockAddr == blk;
}

bool
WriteCache::readWord(Addr addr, std::uint32_t &value) const
{
    Addr blk = map.blockAddr(addr);
    const Frame &f = frames[frameFor(blk)];
    if (!f.valid || f.blockAddr != blk)
        return false;
    unsigned word = map.wordInBlock(addr);
    if (!(f.dirtyMask & (1u << word)))
        return false;
    value = f.words[word];
    return true;
}

std::vector<WriteCacheFlush>
WriteCache::flushAll()
{
    std::vector<WriteCacheFlush> out;
    for (Frame &f : frames) {
        if (f.valid) {
            out.push_back(
                WriteCacheFlush{f.blockAddr, f.dirtyMask, f.words});
            f.valid = false;
            f.dirtyMask = 0;
        }
    }
    return out;
}

void
WriteCache::drop(Addr addr)
{
    Addr blk = map.blockAddr(addr);
    Frame &f = frames[frameFor(blk)];
    if (f.valid && f.blockAddr == blk) {
        f.valid = false;
        f.dirtyMask = 0;
    }
}

unsigned
WriteCache::occupancy() const
{
    unsigned n = 0;
    for (const Frame &f : frames)
        if (f.valid)
            ++n;
    return n;
}

} // namespace cpx
