/**
 * @file
 * First-level cache model.
 *
 * Per the paper (§2): direct-mapped, write-through, no allocation on
 * write misses, blocking on read misses, kept included in the SLC.
 * The FLC is purely a hit/miss filter for the timing model — data
 * lives in the functional backing store.
 */

#ifndef CPX_MEM_FLC_HH
#define CPX_MEM_FLC_HH

#include "mem/tag_store.hh"
#include "sim/stats.hh"

namespace cpx
{

class Flc
{
  public:
    struct Line
    {
        bool valid = false;
    };

    /**
     * @param amap        address geometry
     * @param size_bytes  total capacity (4 KB in the paper)
     */
    Flc(const AddressMap &amap, std::size_t size_bytes)
        : map(amap),
          tags(amap.blockBytes(),
               size_bytes ? size_bytes / amap.blockBytes() : 0)
    {}

    /** Probe for a read. Updates hit/miss statistics. */
    bool
    readProbe(Addr a)
    {
        bool hit = tags.find(a) != nullptr;
        if (hit)
            ++readHits;
        else
            ++readMisses;
        return hit;
    }

    /**
     * Probe for a write. Write-through: a hit updates the line in
     * place (functionally a no-op here); a miss does not allocate.
     */
    bool
    writeProbe(Addr a)
    {
        bool hit = tags.find(a) != nullptr;
        if (hit)
            ++writeHits;
        else
            ++writeMisses;
        return hit;
    }

    /**
     * Fill the block containing @p a after an SLC supply.
     * Direct-mapped: silently displaces any conflicting block
     * (write-through means no dirty data can be lost).
     */
    void
    fill(Addr a)
    {
        tags.insert(a);
    }

    /** Invalidate the block containing @p a (inclusion with SLC). */
    void
    invalidate(Addr a)
    {
        tags.erase(a);
    }

    bool contains(Addr a) const { return tags.find(a) != nullptr; }

    const Counter &readHitCount() const { return readHits; }
    const Counter &readMissCount() const { return readMisses; }
    const Counter &writeHitCount() const { return writeHits; }
    const Counter &writeMissCount() const { return writeMisses; }

  private:
    const AddressMap &map;
    TagStore<Line> tags;
    Counter readHits;
    Counter readMisses;
    Counter writeHits;
    Counter writeMisses;
};

} // namespace cpx

#endif // CPX_MEM_FLC_HH
