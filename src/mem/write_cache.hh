/**
 * @file
 * The write cache of Dahlgren & Stenström [4], used by the CW
 * extension (§3.3 of the paper).
 *
 * A small fully associative FIFO buffer that allocates on writes only
 * and keeps per-word dirty bits *and values*. Consecutive writes to
 * the same block combine until the block is victimized (oldest-first
 * when all frames are resident) or a release flushes the cache; the
 * dirty words then travel to the home node in a single message. The
 * simulator is data-carrying: values written here are invisible to
 * other caches until the flush propagates, exactly as in the
 * modelled hardware.
 */

#ifndef CPX_MEM_WRITE_CACHE_HH
#define CPX_MEM_WRITE_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/block.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cpx
{

/** One combined-write record: a block, its dirty words and values. */
struct WriteCacheFlush
{
    Addr blockAddr = 0;
    std::uint32_t dirtyMask = 0;
    std::vector<std::uint32_t> words;  //!< all words; mask says which

    /** Number of dirty words in the record. */
    unsigned
    dirtyWords() const
    {
        return static_cast<unsigned>(__builtin_popcount(dirtyMask));
    }
};

class WriteCache
{
  public:
    /**
     * @param amap       global address geometry
     * @param num_blocks capacity in blocks (the paper recommends 4)
     */
    WriteCache(const AddressMap &amap, unsigned num_blocks);

    /**
     * Record a word write.
     *
     * @param addr     byte address of the written word
     * @param value    the written value
     * @param evicted  out-parameter: set to the victim record when the
     *                 allocation displaced another block
     * @return true iff a victim was produced
     */
    bool writeWord(Addr addr, std::uint32_t value,
                   WriteCacheFlush &evicted);

    /** @return true iff the block holding @p addr is present. */
    bool contains(Addr addr) const;

    /**
     * Read the buffered value of the word at @p addr.
     * @param value out-parameter, set on a dirty-word hit
     * @return true iff the word is dirty in a resident block
     */
    bool readWord(Addr addr, std::uint32_t &value) const;

    /**
     * Remove and return every resident record (release-time flush).
     * Records are returned oldest-first (insertion order,
     * deterministic).
     */
    std::vector<WriteCacheFlush> flushAll();

    /** Drop the record for @p addr (e.g., ownership obtained). */
    void drop(Addr addr);

    /** Number of resident blocks. */
    unsigned occupancy() const;

    unsigned capacity() const { return numBlocks; }

    /** Writes that combined into an already-resident block. */
    const Counter &combinedWrites() const { return combined; }
    /** Blocks flushed because a newer write displaced them. */
    const Counter &victimFlushes() const { return victims; }
    /** Writes that allocated a fresh block record. */
    const Counter &insertCount() const { return inserts; }
    /** Records flushed out, by eviction or release (flushAll). */
    const Counter &flushCount() const { return flushed; }

  private:
    struct Frame
    {
        bool valid = false;
        Addr blockAddr = 0;
        std::uint32_t dirtyMask = 0;
        std::uint64_t seq = 0;  //!< insertion order (FIFO victim pick)
        std::vector<std::uint32_t> words;
    };

    Frame *findFrame(Addr block_addr);
    const Frame *findFrame(Addr block_addr) const;

    const AddressMap &map;
    unsigned numBlocks;
    std::vector<Frame> frames;
    std::uint64_t nextSeq = 0;
    Counter combined;
    Counter victims;
    Counter inserts;
    Counter flushed;
};

} // namespace cpx

#endif // CPX_MEM_WRITE_CACHE_HH
