/**
 * @file
 * Per-cache miss classification: cold / coherence / replacement.
 *
 * Table 2 of the paper reports cold and coherence miss-rate
 * components; §5.4 discusses replacement misses with finite caches.
 * The classifier uses the standard scheme: a miss to a block the
 * cache never held is cold; a miss to a block last removed by a
 * coherence action (invalidation — including competitive-update
 * counter expiry) is a coherence miss; otherwise it is a replacement
 * miss.
 */

#ifndef CPX_MEM_MISS_CLASS_HH
#define CPX_MEM_MISS_CLASS_HH

#include <unordered_map>

#include "sim/types.hh"

namespace cpx
{

enum class MissKind
{
    Cold,
    Coherence,
    Replacement,
};

/** Why a block left the cache. */
enum class RemovalCause
{
    Invalidation,  //!< coherence invalidation (incl. update-counter expiry)
    Replacement,   //!< evicted to make room
};

class MissClassifier
{
  public:
    /** Classify a miss to @p block_addr and record the block as seen. */
    MissKind
    classify(Addr block_addr)
    {
        auto [it, inserted] =
            history.try_emplace(block_addr, RemovalCause::Replacement);
        if (inserted)
            return MissKind::Cold;
        return it->second == RemovalCause::Invalidation
                   ? MissKind::Coherence
                   : MissKind::Replacement;
    }

    /** Record why @p block_addr just left the cache. */
    void
    noteRemoval(Addr block_addr, RemovalCause cause)
    {
        auto it = history.find(block_addr);
        if (it != history.end())
            it->second = cause;
    }

    /** Number of distinct blocks ever seen by this cache. */
    std::size_t blocksSeen() const { return history.size(); }

  private:
    /// block address -> cause of its most recent removal. Presence in
    /// the map at all means "this cache touched the block before".
    std::unordered_map<Addr, RemovalCause> history;
};

} // namespace cpx

#endif // CPX_MEM_MISS_CLASS_HH
