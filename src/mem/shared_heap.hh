/**
 * @file
 * Allocator for the simulated shared address space.
 *
 * Workloads obtain shared data through this bump allocator. Pages are
 * assigned home nodes round-robin on the virtual page number via
 * AddressMap::home(), matching the paper's page placement policy.
 *
 * Lock variables get a whole block each (the paper models one lock
 * variable per memory block, as in DASH's queue-based locks).
 */

#ifndef CPX_MEM_SHARED_HEAP_HH
#define CPX_MEM_SHARED_HEAP_HH

#include "mem/block.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace cpx
{

class SharedHeap
{
  public:
    explicit SharedHeap(const AddressMap &amap, Addr base = 0x10000)
        : map(amap), next(base)
    {}

    /**
     * Allocate @p bytes with the given alignment (power of two).
     * @return the base address of the allocation
     */
    Addr
    alloc(std::size_t bytes, std::size_t align = wordBytes)
    {
        if (align == 0 || (align & (align - 1)) != 0)
            fatal("allocation alignment must be a power of two");
        next = (next + align - 1) & ~Addr(align - 1);
        Addr base = next;
        next += bytes;
        return base;
    }

    /** Allocate an array of @p count 32-bit words. */
    Addr
    allocWords(std::size_t count)
    {
        return alloc(count * wordBytes, wordBytes);
    }

    /** Allocate an array of @p count 64-bit doubles. */
    Addr
    allocDoubles(std::size_t count)
    {
        return alloc(count * 8, 8);
    }

    /** Allocate block-aligned storage (avoids false sharing). */
    Addr
    allocBlockAligned(std::size_t bytes)
    {
        std::size_t rounded =
            (bytes + map.blockBytes() - 1) & ~std::size_t(
                map.blockBytes() - 1);
        return alloc(rounded, map.blockBytes());
    }

    /** Allocate a lock variable: one full block, block-aligned. */
    Addr
    allocLock()
    {
        return allocBlockAligned(map.blockBytes());
    }

    /**
     * Allocate hot synchronization data with trailing padding so
     * that sequential prefetches running past a neighbouring
     * allocation cannot pull the synchronization block into
     * unrelated caches (SPLASH pads its sync structures the same
     * way).
     */
    Addr
    allocIsolated(std::size_t bytes, unsigned pad_blocks = 16)
    {
        Addr a = allocBlockAligned(bytes);
        alloc(static_cast<std::size_t>(pad_blocks) *
                  map.blockBytes(),
              map.blockBytes());
        return a;
    }

    /** Skip to the start of the next page (to steer home placement). */
    void
    padToNextPage()
    {
        next = (next + map.pageBytes() - 1) &
               ~Addr(map.pageBytes() - 1);
    }

    /** Total bytes allocated so far (including alignment padding). */
    Addr bytesAllocated() const { return next; }

    const AddressMap &addressMap() const { return map; }

  private:
    const AddressMap &map;
    Addr next;
};

} // namespace cpx

#endif // CPX_MEM_SHARED_HEAP_HH
