#include "check/checker.hh"

#include <cinttypes>
#include <cstdio>

#include "proto/directory.hh"
#include "proto/slc.hh"
#include "sim/logging.hh"

namespace cpx
{

CoherenceChecker::CoherenceChecker(System &sys_, Options opts_)
    : sys(sys_), opts(opts_)
{
    sys.setObserver(this);
}

CoherenceChecker::CoherenceChecker(System &sys_)
    : CoherenceChecker(sys_, Options())
{
}

CoherenceChecker::~CoherenceChecker()
{
    if (sys.observer() == this)
        sys.setObserver(nullptr);
}

void
CoherenceChecker::onDirectoryTransition(NodeId, Addr block)
{
    checkBlock(block);
}

void
CoherenceChecker::onSlcTransition(NodeId, Addr block)
{
    checkBlock(block);
}

void
CoherenceChecker::onMessageDelivered(NodeId, NodeId)
{
    ++messages;
}

void
CoherenceChecker::checkBlock(Addr block)
{
    const MachineParams &params = sys.params();
    const NodeId home = sys.amap().home(block);
    const auto snap = sys.dir(home).inspect(block);

    // A block mid-transaction is allowed to disagree with its
    // directory entry: that transient window is the protocol doing
    // its job. Only stable blocks are validated.
    if (snap.inService)
        return;
    for (NodeId n = 0; n < params.numProcs; ++n)
        if (sys.slc(n).hasPendingTransaction(block))
            return;

    ++checks;

    const unsigned words = sys.amap().wordsPerBlock();

    if (snap.modified) {
        // SWMR: exactly one copy, and the directory knows whose.
        if (snap.owner == invalidNode || snap.owner >= params.numProcs) {
            fail(block, "MODIFIED entry without a valid owner");
            return;
        }
        // An exact sharer set must name exactly the owner; an
        // over-approximating one (broadcast / coarse-vector) must at
        // least contain it.
        if (snap.exact
                ? snap.sharers != NodeMask::single(snap.owner)
                : !snap.sharers.test(snap.owner)) {
            char buf[112];
            std::snprintf(buf, sizeof(buf),
                          "MODIFIED sharer set (%u members, low64 "
                          "%#" PRIx64 ") inconsistent with owner %u",
                          snap.sharers.count(), snap.presence,
                          unsigned(snap.owner));
            fail(block, buf);
        }
        for (NodeId n = 0; n < params.numProcs; ++n) {
            const SlcController::Line *l = sys.slc(n).findLine(block);
            if (!l || !l->valid)
                continue;
            if (n != snap.owner) {
                char buf[96];
                std::snprintf(buf, sizeof(buf),
                              "MODIFIED with owner %u but node %u "
                              "also caches a copy",
                              unsigned(snap.owner), unsigned(n));
                fail(block, buf);
            } else if (l->state != SlcController::LineState::Dirty) {
                // The owner's line may legally be *absent* (its
                // replacement write-back is in flight and the home
                // has not serviced it yet), but while resident it
                // must be Dirty.
                fail(block,
                     "MODIFIED owner holds the line in Shared state");
            }
        }
        return;
    }

    // CLEAN: memory is the owner; copies are read-only and current.
    if (snap.owner != invalidNode) {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "CLEAN entry records owner %u",
                      unsigned(snap.owner));
        fail(block, buf);
    }
    for (NodeId n = 0; n < params.numProcs; ++n) {
        const SlcController &slc = sys.slc(n);
        const SlcController::Line *l = slc.findLine(block);
        if (!l || !l->valid)
            continue;
        if (l->state == SlcController::LineState::Dirty) {
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          "CLEAN block is Dirty at node %u",
                          unsigned(n));
            fail(block, buf);
        }
        if (!snap.sharers.test(n)) {
            // The sharer set may be a superset of the holders
            // (SHARED replacements are silent; broadcast and
            // coarse-vector sets over-approximate by design) but
            // never a subset.
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "node %u caches the block but the sharer "
                          "set (low64 %#" PRIx64 ") omits it",
                          unsigned(n), snap.presence);
            fail(block, buf);
        }
        if (!opts.checkData || !dataComparable ||
            l->data.size() < words)
            continue;
        for (unsigned w = 0; w < words; ++w) {
            const Addr wa = block + Addr(w) * wordBytes;
            // CW applies a node's own writes to its shared copy in
            // place; until the combined write propagates, those
            // words legitimately lead memory. Mask them.
            std::uint32_t buffered;
            if (slc.writeCacheUnit().readWord(wa, buffered))
                continue;
            const std::uint32_t mem = sys.store().read32(wa);
            if (l->data[w] != mem) {
                char buf[112];
                std::snprintf(buf, sizeof(buf),
                              "CLEAN copy at node %u word %u is "
                              "%#x, memory has %#x",
                              unsigned(n), w, l->data[w], mem);
                fail(block, buf);
            }
        }
    }
}

void
CoherenceChecker::onBeforeFunctionalFlush()
{
    // Last chance to compare cached data against the store: run the
    // drain-time sweep now. Afterwards the flush writes buffered
    // write-cache words straight into memory, so a stale-but-legal
    // SHARED copy at another node (invisible to a data-race-free
    // program until the combined write propagates) would no longer
    // match — retire the data comparison, keep the structural
    // invariants.
    checkQuiescent();
    dataComparable = false;
}

void
CoherenceChecker::checkAll()
{
    for (NodeId n = 0; n < sys.params().numProcs; ++n)
        for (Addr block : sys.dir(n).knownBlocks())
            checkBlock(block);
}

void
CoherenceChecker::checkQuiescent()
{
    if (!sys.quiescent())
        fail(0, "protocol not quiescent at drain (transactions, "
                "buffered writes or locks left over)");
    checkAll();
}

void
CoherenceChecker::fail(Addr block, const std::string &what)
{
    ++violationTotal;

    char head[64];
    std::snprintf(head, sizeof(head),
                  "coherence violation @ t=%" PRIu64 " blk %#" PRIx64
                  ": ", sys.eq().now(), block);
    std::string msg = std::string(head) + what;

    if (opts.failFast)
        panic("%s", msg.c_str());
    if (violations_.size() < opts.maxViolations)
        violations_.push_back(std::move(msg));
}

} // namespace cpx
