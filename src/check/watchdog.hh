/**
 * @file
 * Progress watchdog for long or wedged runs.
 *
 * The simulator is purely event-driven, so forward progress is
 * exactly "events execute". The watchdog schedules itself every
 * `interval` ticks and compares the event queue's executed count with
 * the previous sample. If, for `stallIntervals` consecutive samples,
 * the only event that ran was the watchdog's own — while processors
 * are still unfinished — the run is permanently stalled (a livelock
 * would still execute events; a deadlock executes none), and the
 * watchdog prints the structured diagnostics dump from
 * core/diagnostics and aborts (or just records, for the tests).
 *
 * Note the complementary roles: System::run() diagnoses a run whose
 * event queue *drains* with suspended processors; the watchdog
 * catches a run that stops progressing while events (e.g. its own
 * heartbeat, or an unrelated spinner) keep the queue alive, and it
 * reports *at the moment of the stall* instead of after a tick limit
 * expires.
 */

#ifndef CPX_CHECK_WATCHDOG_HH
#define CPX_CHECK_WATCHDOG_HH

#include <cstdint>

#include "core/system.hh"

namespace cpx
{

class Watchdog
{
  public:
    struct Options
    {
        /** Ticks between progress samples. */
        Tick interval = 100'000;

        /** Consecutive no-progress samples before declaring a stall. */
        unsigned stallIntervals = 2;

        /** panic() on stall (CLI); off, the tests probe fired(). */
        bool abortOnStall = true;
    };

    Watchdog(System &sys, Options opts);
    explicit Watchdog(System &sys);

    /**
     * Start sampling. Call before System::run(); the first sample
     * fires `interval` ticks into the run. The watchdog stops
     * rescheduling itself once every processor has finished, so it
     * never keeps the event queue alive artificially.
     */
    void arm();

    /** Samples taken so far. */
    std::uint64_t samples() const { return sampleCount; }

    /** True once a stall was detected (abortOnStall off). */
    bool fired() const { return fired_; }

  private:
    void sample();

    System &sys;
    Options opts;
    std::uint64_t lastExecuted = 0;
    unsigned idleSamples = 0;
    std::uint64_t sampleCount = 0;
    bool fired_ = false;
};

} // namespace cpx

#endif // CPX_CHECK_WATCHDOG_HH
