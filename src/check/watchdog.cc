#include "check/watchdog.hh"

#include <cstdio>

#include "core/diagnostics.hh"
#include "sim/logging.hh"

namespace cpx
{

Watchdog::Watchdog(System &sys_, Options opts_)
    : sys(sys_), opts(opts_)
{
    if (opts.interval == 0)
        fatal("watchdog interval must be non-zero");
}

Watchdog::Watchdog(System &sys_) : Watchdog(sys_, Options()) {}

void
Watchdog::arm()
{
    lastExecuted = sys.totalEventsExecuted();
    sys.eq().scheduleIn(opts.interval, [this] { sample(); });
}

void
Watchdog::sample()
{
    ++sampleCount;

    bool all_finished = true;
    for (NodeId n = 0; n < sys.params().numProcs; ++n) {
        if (!sys.processor(n).finished()) {
            all_finished = false;
            break;
        }
    }
    if (all_finished)
        return;  // run is wrapping up; stop sampling

    const std::uint64_t executed = sys.totalEventsExecuted();
    // `executed` includes this very sample event, so a delta of one
    // means nothing but the heartbeat ran: the machine is wedged.
    if (executed - lastExecuted <= 1)
        ++idleSamples;
    else
        idleSamples = 0;
    lastExecuted = executed;

    if (idleSamples >= opts.stallIntervals) {
        fired_ = true;
        std::fputs(formatStallDiagnostics(sys).c_str(), stderr);
        if (opts.abortOnStall) {
            panic("watchdog: no progress for %u x %llu ticks with "
                  "unfinished processors (stall diagnostics above)",
                  opts.stallIntervals,
                  static_cast<unsigned long long>(opts.interval));
        }
        return;  // recorded; stop sampling so the queue can drain
    }

    sys.eq().scheduleIn(opts.interval, [this] { sample(); });
}

} // namespace cpx
