/**
 * @file
 * Runtime coherence-invariant checker.
 *
 * Installs itself as the system's ProtocolObserver and, after every
 * directory transaction and SLC line transition, re-validates the
 * core invariants of the BASIC+P/M/CW protocol for the affected
 * block:
 *
 *  - SWMR: a MODIFIED directory entry has exactly one presence bit,
 *    a valid owner matching that bit, and no other node caches the
 *    block; the owner's line, when resident, is in the Dirty state
 *    (it may legitimately be absent while a replacement write-back
 *    is in flight — the directory's staleWbExpected race).
 *  - Directory/cache agreement: a CLEAN entry has no owner, no node
 *    holds a Dirty line, and every cached copy is covered by a
 *    presence bit (presence may be a superset: SHARED replacements
 *    are silent).
 *  - Data-value consistency: for CLEAN blocks, every cached copy
 *    matches the backing store word for word, except words the
 *    holder has buffered in its own write cache (CW updates copies
 *    in place before the combined write propagates).
 *
 * Blocks that are mid-transaction — in service at the home, or with
 * an outstanding SLWB transaction at any node — are intentionally
 * skipped: their transient disagreement is the protocol working as
 * designed. Quiescence at drain is checked separately
 * (checkQuiescent()).
 *
 * Costs nothing when not constructed: the protocol agents guard
 * each observer notification with one inline null check.
 */

#ifndef CPX_CHECK_CHECKER_HH
#define CPX_CHECK_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hh"

namespace cpx
{

class CoherenceChecker : public ProtocolObserver
{
  public:
    struct Options
    {
        /** Compare cached words against the backing store. */
        bool checkData = true;

        /** panic() on the first violation (stress CLI); with this
         *  off, violations are recorded for the tests to inspect. */
        bool failFast = false;

        /** Cap on recorded violations when failFast is off. */
        std::size_t maxViolations = 64;
    };

    /** Installs itself as @p sys's observer. */
    CoherenceChecker(System &sys, Options opts);
    explicit CoherenceChecker(System &sys);

    /** Uninstalls the observer. */
    ~CoherenceChecker() override;

    CoherenceChecker(const CoherenceChecker &) = delete;
    CoherenceChecker &operator=(const CoherenceChecker &) = delete;

    // --- ProtocolObserver -------------------------------------------------
    void onDirectoryTransition(NodeId home, Addr block) override;
    void onSlcTransition(NodeId node, Addr block) override;
    void onMessageDelivered(NodeId src, NodeId dst) override;

    /**
     * Final full sweep (checkQuiescent) while cached copies and
     * memory are still comparable, then retire the data-value check:
     * the flush pushes buffered write-cache words into the store, so
     * a stale-but-legal SHARED copy elsewhere (its word was dirty in
     * the writer's write cache, unobservable by a data-race-free
     * program) would otherwise be flagged against post-flush memory.
     */
    void onBeforeFunctionalFlush() override;

    // --- explicit sweeps ---------------------------------------------------
    /** Validate one block now (skipped if mid-transaction). */
    void checkBlock(Addr block);

    /** Validate every block any directory knows about. */
    void checkAll();

    /**
     * Drain-time check: the protocol must be fully quiescent (no
     * transactions, no buffered write-class operations, no held
     * locks) and every block must satisfy the stable invariants.
     * Call after System::run() returns.
     */
    void checkQuiescent();

    // --- results -----------------------------------------------------------
    /** Block validations actually performed (not skipped). */
    std::uint64_t checksRun() const { return checks; }

    /** Protocol messages observed in flight. */
    std::uint64_t messagesObserved() const { return messages; }

    std::uint64_t violationCount() const { return violationTotal; }

    /** Recorded violation descriptions (failFast off). */
    const std::vector<std::string> &violations() const {
        return violations_;
    }

  private:
    void fail(Addr block, const std::string &what);

    System &sys;
    Options opts;
    std::uint64_t checks = 0;
    std::uint64_t messages = 0;
    std::uint64_t violationTotal = 0;
    /// Cleared by the functional flush: memory no longer reflects
    /// what the protocol has performed.
    bool dataComparable = true;
    std::vector<std::string> violations_;
};

} // namespace cpx

#endif // CPX_CHECK_CHECKER_HH
